"""The cluster facade and its two-phase-commit coordinator.

:class:`Cluster` speaks the driver protocol (``submit`` / ``drain``),
so :class:`~repro.workloads.driver.LoadDriver` routes through it exactly
as it would through a single engine.  Per transaction:

- **Single-home fast path**: one request hop over the network, then the
  home node's engine owns the whole lifecycle (begin/trace/retry/
  observe), identical to a single-node run of that engine.
- **Cross-shard 2PC**: the coordinator builds one
  :class:`~repro.engines.base.Branch` per touched shard and runs

  1. *prepare*: request hop → branch enqueued on the node → the worker
     executes the slice holding locks, forces a prepare record, votes →
     vote hop back.  The coordinator's wall time across all votes is the
     traced frame ``dist_prepare_wait``.
  2. *decision*: a forced record on the coordinator's own log (the
     classic 2PC decision point), decision hops out, participants seal
     (commit record) and release, ack hops back — waited as
     ``dist_commit_wait``.

  Any no vote (deadlock, lock-wait timeout, shed, worker crash) aborts
  the round globally; voted-yes participants roll back via the decision
  and the whole transaction retries under the coordinator's
  :class:`~repro.faults.RetryPolicy`, mirroring the engines' local
  retry discipline.

Both ``dist_*`` frames are recorded through ``tracer.record`` with the
coordinator's global transaction context, so the variance tree ranks
distributed waits against ``os_event_wait``, ``fil_flush`` and friends
with no new analysis machinery.  Branch-local traced durations (lock
waits inside a participant, its prepare flush) are folded back into the
global trace after each round.
"""

from repro.core.annotations import TransactionContext
from repro.engines.base import Branch
from repro.exec.schema import register_config
from repro.faults.retry import RetryPolicy
from repro.sim.disk import Disk, DiskConfig
from repro.sim.kernel import WaitEvent
from repro.sim.network import NetworkConfig
from repro.workloads.base import TxnSpec

#: The traced factor names the coordinator records; the cluster adds
#: them to the tracer's instrumented set (they appear in no engine call
#: graph, so this cannot perturb engine tracing).
DIST_FRAMES = ("dist_prepare_wait", "dist_commit_wait")


@register_config
class Topology:
    """Cluster shape + message and 2PC cost knobs (pure configuration)."""

    def __init__(
        self,
        router="hash",
        network=None,
        request_bytes=256,
        vote_bytes=64,
        decision_bytes=64,
        ack_bytes=64,
        decision_log=True,
        coord_log_disk=None,
        max_attempts=12,
        backoff_range=(500.0, 2000.0),
    ):
        self.router = router
        self.network = network or NetworkConfig()
        self.request_bytes = request_bytes
        self.vote_bytes = vote_bytes
        self.decision_bytes = decision_bytes
        self.ack_bytes = ack_bytes
        # The coordinator's forced decision record; disable to model an
        # in-memory (presumed-nothing) coordinator.
        self.decision_log = decision_log
        self.coord_log_disk = coord_log_disk or DiskConfig.battery_backed()
        self.max_attempts = max_attempts
        self.backoff_range = backoff_range

    def __repr__(self):
        return "<Topology router=%s decision_log=%r>" % (
            self.router,
            self.decision_log,
        )


class Cluster:
    """N nodes + network + router behind the engine/driver protocol."""

    name = "cluster"
    #: The coordinator's network identity (it is not a shard).
    COORD = -1

    def __init__(self, sim, tracer, nodes, network, router, streams, topology,
                 groups=None):
        self.sim = sim
        self.tracer = tracer
        self.nodes = nodes
        self.network = network
        self.router = router
        self.streams = streams
        self.topology = topology
        #: ``{shard: ReplicaGroup}`` when the experiment configures
        #: replication (repro.replication); empty otherwise — every
        #: replica-aware branch below is guarded on this map, so
        #: replica-free clusters execute the exact same instruction
        #: sequence as before the subsystem existed.
        self.groups = groups or {}
        self.telemetry = sim.telemetry
        self.check = sim.check
        self.retry_policy = RetryPolicy(
            max_attempts=topology.max_attempts,
            base_backoff=topology.backoff_range[0],
            max_backoff=topology.backoff_range[1],
        )
        self.retry_rng = streams.stream("cluster.retry")
        if topology.decision_log:
            self.coord_disk = Disk(
                sim,
                streams.stream("cluster.coord_log"),
                topology.coord_log_disk,
                "coord_log",
            )
        else:
            self.coord_disk = None
        # Distributed waits must be attributable without the caller
        # remembering to instrument them.
        tracer.instrumented.update(DIST_FRAMES)
        self._draining = False
        self._inflight = 0
        self._idle = None
        # Crash-recovery state (repro.recovery).  ``_procs`` tracks every
        # coordinator-side process so a coordinator crash can kill them;
        # ``_live`` maps each in-flight global ctx to what recovery needs
        # to terminate it; ``_decision_log`` mirrors the *durable*
        # contents of the coordinator's log disk (appended only after the
        # forced flush completes, with no yield in between, so its
        # in-memory copy can never run ahead of the device); ``_down``
        # makes submissions fail fast while the coordinator is dead.
        # All four are pure-Python state: a run without a planned
        # coordinator crash executes the same instruction sequence.
        self._procs = []
        self._live = {}
        self._decision_log = []
        self._down = False
        # Coordinator-level give-ups (cross-shard transactions that
        # exhausted their retries); per-attempt aborts are counted on the
        # participant nodes, so the merged views below never double count.
        self.coord_failed_by_reason = {}
        self.single_home_txns = 0
        self.cross_shard_txns = 0
        self.replica_read_txns = 0
        tm = self.telemetry
        self._t_replica_reads = tm.counter("cluster.replica_reads")
        self._t_committed = tm.counter("cluster.txns_committed")
        self._t_failed = tm.counter("cluster.txns_failed")
        self._t_retries = tm.counter("cluster.txn_retries")
        self._t_single_home = tm.counter("cluster.single_home_txns")
        self._t_cross_shard = tm.counter("cluster.cross_shard_txns")
        self._t_prepare_wait = tm.histogram("cluster.prepare_wait")
        self._t_commit_wait = tm.histogram("cluster.commit_wait")
        # The three routing counters shadow the plain accounting
        # attributes one-for-one and fire once per transaction; they are
        # folded in bulk at registry flush instead of per submit().
        self._flushed_single = 0
        self._flushed_cross = 0
        self._flushed_replica = 0
        tm.add_flush_hook(self._flush_counters)

    def _flush_counters(self):
        """Fold the deferred routing totals into their counters."""
        delta = self.single_home_txns - self._flushed_single
        if delta:
            self._t_single_home.inc(delta)
            self._flushed_single = self.single_home_txns
        delta = self.cross_shard_txns - self._flushed_cross
        if delta:
            self._t_cross_shard.inc(delta)
            self._flushed_cross = self.cross_shard_txns
        delta = self.replica_read_txns - self._flushed_replica
        if delta:
            self._t_replica_reads.inc(delta)
            self._flushed_replica = self.replica_read_txns

    # ------------------------------------------------------------------
    # Driver protocol
    # ------------------------------------------------------------------

    def submit(self, ctx, spec):
        """Route one transaction; always accepted at the cluster edge.

        Shedding happens at the node engines (their bounded queues), so
        an overloaded shard degrades exactly as an overloaded single-node
        run does.
        """
        if self._draining:
            raise RuntimeError("submit after drain on cluster")
        if self._down:
            # The coordinator is dead: connections fail fast — clients
            # see an explicit error instead of queueing on a dead
            # endpoint (node queues, by contrast, survive their node's
            # crash and simply wait out the restart).
            self._fail_txn(ctx, "coord_down")
            return False
        groups = self.router.split(spec)
        self._inflight += 1
        if len(groups) == 1:
            shard = next(iter(groups))
            self.single_home_txns += 1
            self._live[ctx] = {"kind": "single"}
            replica = self._route_read(shard, spec)
            if replica is not None:
                self.replica_read_txns += 1
                self._spawn(
                    self._replica_read(ctx, spec, shard, replica),
                    "coord.txn%s" % (ctx.txn_id,),
                )
                return True
            self._spawn(
                self._single_home(ctx, spec, self.nodes[shard]),
                "coord.txn%s" % (ctx.txn_id,),
            )
        else:
            self.cross_shard_txns += 1
            self._live[ctx] = {
                "kind": "2pc",
                "branches": (),
                "decision": None,
                "decided": None,
            }
            self._spawn(
                self._coordinate(ctx, groups),
                "coord.txn%s" % (ctx.txn_id,),
            )
        return True

    def _spawn(self, gen, name):
        """Spawn a coordinator-side process, tracked for crash kills."""
        proc = self.sim.spawn(gen, name=name)
        procs = self._procs
        procs.append(proc)
        if len(procs) > 512:
            self._procs = [p for p in procs if not p.done.fired]
        return proc

    def drain(self):
        """No more submissions; nodes drain once 2PC traffic quiesces.

        Coordinators submit branches (and retried rounds) after the last
        client arrival, so node queues can only be sealed once every
        in-flight coordinator has finished.
        """
        self._draining = True
        self._spawn(self._drain_when_idle(), "cluster.drain")

    @property
    def queue_depth(self):
        return sum(node.engine.queue_depth for node in self.nodes)

    def _drain_when_idle(self):
        while self._inflight > 0:
            self._idle = self.sim.event()
            yield WaitEvent(self._idle)
        for node in self.nodes:
            node.engine.drain()

    def _txn_done(self):
        self._inflight -= 1
        if self._inflight == 0 and self._idle is not None:
            idle, self._idle = self._idle, None
            idle.fire()

    # ------------------------------------------------------------------
    # Single-home fast path
    # ------------------------------------------------------------------

    def _single_home(self, ctx, spec, node):
        # Once submit() returns, the home node owns the whole lifecycle;
        # there is no yield between the hand-off and the cleanup below,
        # so a coordinator crash can only catch this process *before* the
        # hand-off (mid network send) — recovery then fails the txn with
        # ``coord_crash``.
        network = self.network
        try:
            if network._faults.enabled:
                yield from network.send(
                    self.COORD, node.node_id, self.topology.request_bytes
                )
            else:
                # Fault-free fast hop: the whole request message costs
                # one precomputed delay (Network.send_delay mutates the
                # same link state and draws the same latency sample), so
                # the hop runs in this frame with a single bare-float
                # yield instead of delegating into a send() generator.
                yield network.send_delay(
                    self.COORD, node.node_id, self.topology.request_bytes
                )
            node.engine.submit(ctx, spec)
        finally:
            self._live.pop(ctx, None)
            self._txn_done()

    # ------------------------------------------------------------------
    # Replica reads (repro.replication)
    # ------------------------------------------------------------------

    def _route_read(self, shard, spec):
        """The replica to serve this transaction, or None for the primary.

        Only single-home transactions made entirely of non-locking
        selects qualify — anything that writes or locks must see the
        primary.  :meth:`ReplicaGroup.pick_replica` applies the staleness
        bound; when no live replica is inside it the read falls back to
        the primary, so bounded-staleness reads never fail.
        """
        group = self.groups.get(shard)
        if group is None or group.config.read_policy != "replica_ok":
            return None
        for op in spec.ops:
            if op.kind != "select" or op.lock is not None:
                return None
        return group.pick_replica(self.sim.now)

    def _replica_read(self, ctx, spec, shard, replica):
        """One read-only transaction served by a replica.

        Request hop out, per-statement CPU on the replica, response hop
        back — no locks, no engine queueing, no retry loop.  The
        routing-time staleness is what the recorder logs: that is the
        value the router's bound decision was made on, so the
        ``repl-stale-read-beyond-bound`` oracle audits the policy rather
        than whatever lag accrued mid-flight.
        """
        group = self.groups[shard]
        cfg = group.config
        try:
            tracer = self.tracer
            tracer.begin_transaction(ctx)
            staleness = group.staleness(replica, self.sim.now)
            yield from self.network.send(
                self.COORD, replica.net_id, cfg.read_request_bytes
            )
            for _ in spec.ops:
                yield cfg.replica_read_cpu
            yield from self.network.send(
                replica.net_id, self.COORD, self.topology.ack_bytes
            )
            group.replica_reads += 1
            check = self.check
            if check.enabled:
                check.repl_read(
                    ctx.txn_id, shard, replica.idx, staleness,
                    cfg.staleness_bound_us,
                )
            tracer.end_transaction(ctx, committed=True)
            self.observe_txn(ctx, True)
        finally:
            self._live.pop(ctx, None)
            self._txn_done()

    # ------------------------------------------------------------------
    # Two-phase commit
    # ------------------------------------------------------------------

    def _coordinate(self, ctx, groups):
        try:
            tracer = self.tracer
            policy = self.retry_policy
            tracer.begin_transaction(ctx)
            committed = False
            reason = None
            for attempt in range(policy.max_attempts):
                if attempt:
                    ctx.attempts += 1
                    self._t_retries.inc()
                    policy.note_retry(reason or "abort")
                    yield policy.backoff(attempt, self.retry_rng)
                ctx.abort_reason = None
                ok, reason = yield from self._attempt_2pc(ctx, groups)
                if ok:
                    committed = True
                    break
            if not committed:
                final = reason or "abort"
                ctx.abort_reason = final
                policy.note_give_up(final)
                self.coord_failed_by_reason[final] = (
                    self.coord_failed_by_reason.get(final, 0) + 1
                )
                self.telemetry.counter("cluster.failed.%s" % (final,)).inc()
            tracer.end_transaction(ctx, committed)
            self.observe_txn(ctx, committed)
        finally:
            self._live.pop(ctx, None)
            self._txn_done()

    def _attempt_2pc(self, ctx, groups):
        """Generator: one 2PC round.  Evaluates to (committed, reason)."""
        sim = self.sim
        topology = self.topology
        branches = [
            Branch(
                TransactionContext(sim, "%s/n%d" % (ctx.txn_id, shard), ctx.txn_type),
                TxnSpec(ctx.txn_type, ops),
                shard,
                sim,
            )
            for shard, ops in groups.items()
        ]
        check = self.check
        if check.enabled:
            check.twopc_begin(
                ctx, [(branch.ctx, branch.node_id) for branch in branches]
            )
        live = self._live.get(ctx)
        if live is not None:
            # A fresh round supersedes the previous one for termination:
            # these are the branches a recovering coordinator must drive.
            live["branches"] = branches
            live["decided"] = None
        # Phase 1 — prepare: one courier per branch carries the request
        # out and the vote back; the couriers overlap, the coordinator
        # pays the slowest.
        arrivals = []
        for branch in branches:
            arrived = sim.event()
            self._spawn(
                self._prepare_branch(branch, arrived),
                "coord.prep.%s" % (branch.ctx.txn_id,),
            )
            arrivals.append(arrived)
        started = sim.now
        for arrived in arrivals:
            yield WaitEvent(arrived)
        prepare_wait = sim.now - started
        self._t_prepare_wait.observe(prepare_wait)
        self.tracer.record(ctx, "dist_prepare_wait", prepare_wait, site="cluster")
        commit = all(branch.vote for branch in branches)
        # The decision point: force the outcome to the coordinator log
        # before telling anyone (presumed-nothing 2PC).  Everything from
        # the completed flush to the bookkeeping below runs without a
        # yield, so a crash can never separate the durable record from
        # the in-memory mirror recovery replays.
        if self.coord_disk is not None:
            yield from self.coord_disk.write(topology.decision_bytes)
            yield from self.coord_disk.flush()
            self._decision_log.append((ctx.txn_id, commit))
            if live is not None:
                live["decision"] = commit
        if live is not None:
            live["decided"] = commit
        if check.enabled:
            check.twopc_decision(
                ctx, commit, logged=True if self.coord_disk is not None else None
            )
        # Phase 2 — decision: only voted-yes participants are parked on
        # the decision event (no-voters already released and left).
        started = sim.now
        acks = []
        for branch in branches:
            if not branch.vote:
                continue
            acked = sim.event()
            self._spawn(
                self._decide_branch(branch, commit, acked),
                "coord.decide.%s" % (branch.ctx.txn_id,),
            )
            acks.append(acked)
        for acked in acks:
            yield WaitEvent(acked)
        if acks:
            commit_wait = sim.now - started
            self._t_commit_wait.observe(commit_wait)
            self.tracer.record(ctx, "dist_commit_wait", commit_wait, site="cluster")
        # Fold branch-local traced time (lock waits, prepare flushes)
        # into the global trace so engine factors stay visible for
        # cross-shard transactions.
        for branch in branches:
            self._merge_branch_trace(ctx, branch.ctx)
        if commit:
            return True, None
        for branch in branches:
            if branch.reason:
                return False, branch.reason
        return False, "abort"

    def _prepare_branch(self, branch, arrived):
        topology = self.topology
        yield from self.network.send(
            self.COORD, branch.node_id, topology.request_bytes
        )
        self.nodes[branch.node_id].engine.submit_branch(branch)
        yield WaitEvent(branch.prepared)
        yield from self.network.send(
            branch.node_id, self.COORD, topology.vote_bytes
        )
        arrived.fire(branch.vote)

    def _decide_branch(self, branch, commit, acked):
        topology = self.topology
        yield from self.network.send(
            self.COORD, branch.node_id, topology.decision_bytes
        )
        branch.decision.fire(commit)
        yield WaitEvent(branch.done)
        yield from self.network.send(
            branch.node_id, self.COORD, topology.ack_bytes
        )
        acked.fire()

    @staticmethod
    def _merge_branch_trace(ctx, branch_ctx):
        if branch_ctx.durations:
            durations = ctx.durations
            for key, value in branch_ctx.durations.items():
                durations[key] = durations.get(key, 0.0) + value
        if branch_ctx.under:
            under = ctx.under
            for parent_key, children in branch_ctx.under.items():
                per_child = under.setdefault(parent_key, {})
                for child_key, value in children.items():
                    per_child[child_key] = per_child.get(child_key, 0.0) + value

    # ------------------------------------------------------------------
    # Coordinator crash and recovery (repro.recovery)
    # ------------------------------------------------------------------

    def crash_coordinator(self):
        """Kill the coordinator at this instant; returns the live map.

        Every coordinator-side process dies (retry loops, prepare and
        decide couriers, the drain watcher); only the decision-log disk
        contents survive.  No virtual time passes and nothing random is
        drawn.  The returned ``{ctx: rec}`` map is what
        :meth:`recover_coordinator` terminates — it is handed over
        explicitly rather than kept, mirroring how an engine's crash
        report flows into its recovery.
        """
        for proc in self._procs:
            if not proc.done.fired:
                proc.done.fire()
        del self._procs[:]
        live, self._live = self._live, {}
        self._down = True
        self._idle = None
        return live

    def recover_coordinator(self, live, crash_time):
        """Generator: decision-log replay + the 2PC termination protocol.

        Replays the durable decision log as sequential reads, then
        terminates every transaction the dead coordinator left behind:

        - single-home transactions still mid-hand-off fail with
          ``coord_crash`` (the client's connection died with the
          coordinator; handed-off ones were already owned by their node);
        - cross-shard rounds with a logged (or participant-known) commit
          decision are re-driven to completion — outcome
          ``recovered_commit``;
        - everything else is presumed abort: undecided branches are told
          to abort, and the transaction fails with ``resolved_abort``.

        Only then does the coordinator accept new work again.
        """
        if self.coord_disk is not None and self._decision_log:
            yield from self.coord_disk.read_sequential(
                len(self._decision_log) * self.topology.decision_bytes
            )
        for ctx, rec in live.items():
            if rec["kind"] == "single":
                self._fail_txn(ctx, "coord_crash")
                self._txn_done()
                continue
            yield from self._terminate_round(ctx, rec, crash_time)
            self._txn_done()
        self._down = False
        if self._draining:
            self._spawn(self._drain_when_idle(), "cluster.drain")
        self.telemetry.event(
            "cluster.coordinator_recovered",
            terminated=len(live),
            log_records=len(self._decision_log),
        )

    def _terminate_round(self, ctx, rec, crash_time):
        """Generator: terminate one orphaned 2PC transaction."""
        branches = rec.get("branches") or ()
        decision = rec.get("decision")
        if decision is None:
            # Cooperative termination: a participant that already heard
            # the outcome is as good as the log (only possible mid
            # phase 2, when the decision was durable or there is no log).
            for branch in branches:
                if branch.decision.fired:
                    decision = bool(branch.decision.value)
                    break
        if decision:
            yield from self._redrive_commit(ctx, branches, crash_time)
            return
        # Presumed abort: no commit decision survives, so there isn't
        # one.  Record the abort decision for the live round unless the
        # round had already recorded one before the crash.
        if self.check.enabled and rec.get("decided") is None:
            self.check.twopc_decision(ctx, False, logged=None)
        topology = self.topology
        for branch in branches:
            if branch.done.fired or branch.decision.fired:
                continue
            if branch.prepared.fired and not branch.vote:
                continue  # voted no; already released and left
            if branch.prepared.fired:
                # A prepared participant is parked holding locks: pay the
                # decision hop that releases it.
                yield from self.network.send(
                    self.COORD, branch.node_id, topology.decision_bytes
                )
            branch.decision.fire(False)
        for branch in branches:
            self._merge_branch_trace(ctx, branch.ctx)
        self._record_indoubt_wait(ctx, crash_time)
        self._fail_txn(ctx, "resolved_abort", outcome="resolved_abort")

    def _redrive_commit(self, ctx, branches, crash_time):
        """Generator: re-drive a logged commit decision to its branches.

        A logged commit implies unanimous yes votes, so every branch is
        (or will be) parked on its decision event; crashed participants
        resolve through their own in-doubt path once their node rejoins.
        """
        topology = self.topology
        redriven = []
        for branch in branches:
            if branch.done.fired:
                continue
            if not branch.decision.fired:
                yield from self.network.send(
                    self.COORD, branch.node_id, topology.decision_bytes
                )
                branch.decision.fire(True)
            redriven.append(branch)
        for branch in redriven:
            if not branch.done.fired:
                yield WaitEvent(branch.done)
            yield from self.network.send(
                branch.node_id, self.COORD, topology.ack_bytes
            )
        for branch in branches:
            self._merge_branch_trace(ctx, branch.ctx)
        self._record_indoubt_wait(ctx, crash_time)
        del ctx.stack[:]
        self.tracer.begin_transaction(ctx)
        self.tracer.end_transaction(ctx, committed=True)
        self.observe_txn(ctx, True, outcome="recovered_commit")

    def _record_indoubt_wait(self, ctx, crash_time):
        if "indoubt_wait" in self.tracer.instrumented:
            dt = self.sim.now - crash_time
            if dt > 0.0:
                self.tracer.record(ctx, "indoubt_wait", dt, site="recovery")

    def _fail_txn(self, ctx, reason, outcome=None):
        """Fail one transaction on the coordinator's behalf."""
        ctx.abort_reason = reason
        self.retry_policy.note_give_up(reason)
        self.coord_failed_by_reason[reason] = (
            self.coord_failed_by_reason.get(reason, 0) + 1
        )
        self.telemetry.counter("cluster.failed.%s" % (reason,)).inc()
        del ctx.stack[:]
        self.tracer.begin_transaction(ctx)
        self.tracer.end_transaction(ctx, committed=False)
        self.observe_txn(ctx, False, outcome=outcome)

    def resolve_indoubt(self, node, branch, crash_time):
        """Generator: in-doubt resolution for one restarted participant.

        Spawned per in-doubt branch by the crash controller after the
        branch's node rejoins (its locks were re-granted during
        recovery).  The participant re-sends its yes vote to the
        coordinator, waits for the decision if it is still outstanding,
        and then runs exactly the tail :meth:`Engine._run_branch` would
        have run: commit record + seal on commit, release, done.  Firing
        ``done`` is also what unparks the coordinator's decide courier,
        whose ack then completes the global transaction.
        """
        engine = node.engine
        topology = self.topology
        ctx = branch.ctx
        check = self.check
        yield from self.network.send(node.node_id, self.COORD, topology.vote_bytes)
        if not branch.decision.fired:
            yield WaitEvent(branch.decision)
        yield from self.network.send(
            self.COORD, node.node_id, topology.decision_bytes
        )
        if "indoubt_wait" in self.tracer.instrumented:
            dt = self.sim.now - crash_time
            if dt > 0.0:
                self.tracer.record(ctx, "indoubt_wait", dt, site="recovery")
        commit = bool(branch.decision.value)
        if commit:
            yield from engine._branch_commit(ctx, branch)
            if check.enabled:
                check.branch_sealed(ctx)
            engine.telemetry.counter(engine.name + ".branches_committed").inc()
        else:
            branch.reason = branch.reason or "remote_abort"
            engine.telemetry.counter(engine.name + ".branches_aborted").inc()
        if commit:
            repl = engine.replication
            if repl is not None and branch.redo_bytes:
                yield from repl.commit_barrier(ctx, branch.redo_bytes)
        yield from engine._branch_release(ctx, branch)
        if check.enabled:
            check.branch_finished(ctx, commit)
        if not branch.done.fired:
            branch.done.fire(commit)

    # ------------------------------------------------------------------
    # Accounting (RunResult protocol)
    # ------------------------------------------------------------------

    def observe_txn(self, ctx, committed, outcome=None):
        if self.check.enabled:
            self.check.finish(ctx, committed, outcome=outcome)
        tm = self.telemetry
        if committed:
            self._t_committed.inc()
            if tm.enabled:
                tm.histogram("cluster.latency.%s" % (ctx.txn_type,)).observe(
                    self.sim.now - ctx.birth
                )
        else:
            self._t_failed.inc()
            if tm.enabled:
                tm.event(
                    "cluster.txn_failed",
                    txn=ctx.txn_id,
                    txn_type=ctx.txn_type,
                    attempts=ctx.attempts,
                    reason=ctx.abort_reason or "abort",
                )

    @property
    def aborts_by_reason(self):
        """Per-attempt aborts across all nodes (branches included)."""
        merged = {}
        for node in self.nodes:
            for reason, count in node.engine.aborts_by_reason.items():
                merged[reason] = merged.get(reason, 0) + count
        return merged

    @property
    def failed_by_reason(self):
        """Never-committed transactions: node-level + coordinator give-ups."""
        merged = dict(self.coord_failed_by_reason)
        for node in self.nodes:
            for reason, count in node.engine.failed_by_reason.items():
                merged[reason] = merged.get(reason, 0) + count
        return merged

    @property
    def aborts(self):
        return sum(self.aborts_by_reason.values())

    @property
    def failed_txns(self):
        return sum(self.failed_by_reason.values())

    @property
    def worker_crashes(self):
        return sum(node.engine.worker_crashes for node in self.nodes)

    def __repr__(self):
        return "<Cluster nodes=%d router=%s>" % (
            len(self.nodes),
            self.router.kind,
        )
