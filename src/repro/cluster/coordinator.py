"""The cluster facade and its two-phase-commit coordinator.

:class:`Cluster` speaks the driver protocol (``submit`` / ``drain``),
so :class:`~repro.workloads.driver.LoadDriver` routes through it exactly
as it would through a single engine.  Per transaction:

- **Single-home fast path**: one request hop over the network, then the
  home node's engine owns the whole lifecycle (begin/trace/retry/
  observe), identical to a single-node run of that engine.
- **Cross-shard 2PC**: the coordinator builds one
  :class:`~repro.engines.base.Branch` per touched shard and runs

  1. *prepare*: request hop → branch enqueued on the node → the worker
     executes the slice holding locks, forces a prepare record, votes →
     vote hop back.  The coordinator's wall time across all votes is the
     traced frame ``dist_prepare_wait``.
  2. *decision*: a forced record on the coordinator's own log (the
     classic 2PC decision point), decision hops out, participants seal
     (commit record) and release, ack hops back — waited as
     ``dist_commit_wait``.

  Any no vote (deadlock, lock-wait timeout, shed, worker crash) aborts
  the round globally; voted-yes participants roll back via the decision
  and the whole transaction retries under the coordinator's
  :class:`~repro.faults.RetryPolicy`, mirroring the engines' local
  retry discipline.

Both ``dist_*`` frames are recorded through ``tracer.record`` with the
coordinator's global transaction context, so the variance tree ranks
distributed waits against ``os_event_wait``, ``fil_flush`` and friends
with no new analysis machinery.  Branch-local traced durations (lock
waits inside a participant, its prepare flush) are folded back into the
global trace after each round.
"""

from repro.core.annotations import TransactionContext
from repro.engines.base import Branch
from repro.faults.retry import RetryPolicy
from repro.sim.disk import Disk, DiskConfig
from repro.sim.kernel import WaitEvent
from repro.sim.network import NetworkConfig
from repro.workloads.base import TxnSpec

#: The traced factor names the coordinator records; the cluster adds
#: them to the tracer's instrumented set (they appear in no engine call
#: graph, so this cannot perturb engine tracing).
DIST_FRAMES = ("dist_prepare_wait", "dist_commit_wait")


class Topology:
    """Cluster shape + message and 2PC cost knobs (pure configuration)."""

    def __init__(
        self,
        router="hash",
        network=None,
        request_bytes=256,
        vote_bytes=64,
        decision_bytes=64,
        ack_bytes=64,
        decision_log=True,
        coord_log_disk=None,
        max_attempts=12,
        backoff_range=(500.0, 2000.0),
    ):
        self.router = router
        self.network = network or NetworkConfig()
        self.request_bytes = request_bytes
        self.vote_bytes = vote_bytes
        self.decision_bytes = decision_bytes
        self.ack_bytes = ack_bytes
        # The coordinator's forced decision record; disable to model an
        # in-memory (presumed-nothing) coordinator.
        self.decision_log = decision_log
        self.coord_log_disk = coord_log_disk or DiskConfig.battery_backed()
        self.max_attempts = max_attempts
        self.backoff_range = backoff_range

    def __repr__(self):
        return "<Topology router=%s decision_log=%r>" % (
            self.router,
            self.decision_log,
        )


class Cluster:
    """N nodes + network + router behind the engine/driver protocol."""

    name = "cluster"
    #: The coordinator's network identity (it is not a shard).
    COORD = -1

    def __init__(self, sim, tracer, nodes, network, router, streams, topology):
        self.sim = sim
        self.tracer = tracer
        self.nodes = nodes
        self.network = network
        self.router = router
        self.streams = streams
        self.topology = topology
        self.telemetry = sim.telemetry
        self.check = sim.check
        self.retry_policy = RetryPolicy(
            max_attempts=topology.max_attempts,
            base_backoff=topology.backoff_range[0],
            max_backoff=topology.backoff_range[1],
        )
        self.retry_rng = streams.stream("cluster.retry")
        if topology.decision_log:
            self.coord_disk = Disk(
                sim,
                streams.stream("cluster.coord_log"),
                topology.coord_log_disk,
                "coord_log",
            )
        else:
            self.coord_disk = None
        # Distributed waits must be attributable without the caller
        # remembering to instrument them.
        tracer.instrumented.update(DIST_FRAMES)
        self._draining = False
        self._inflight = 0
        self._idle = None
        # Coordinator-level give-ups (cross-shard transactions that
        # exhausted their retries); per-attempt aborts are counted on the
        # participant nodes, so the merged views below never double count.
        self.coord_failed_by_reason = {}
        self.single_home_txns = 0
        self.cross_shard_txns = 0
        tm = self.telemetry
        self._t_committed = tm.counter("cluster.txns_committed")
        self._t_failed = tm.counter("cluster.txns_failed")
        self._t_retries = tm.counter("cluster.txn_retries")
        self._t_single_home = tm.counter("cluster.single_home_txns")
        self._t_cross_shard = tm.counter("cluster.cross_shard_txns")
        self._t_prepare_wait = tm.histogram("cluster.prepare_wait")
        self._t_commit_wait = tm.histogram("cluster.commit_wait")

    # ------------------------------------------------------------------
    # Driver protocol
    # ------------------------------------------------------------------

    def submit(self, ctx, spec):
        """Route one transaction; always accepted at the cluster edge.

        Shedding happens at the node engines (their bounded queues), so
        an overloaded shard degrades exactly as an overloaded single-node
        run does.
        """
        if self._draining:
            raise RuntimeError("submit after drain on cluster")
        groups = self.router.split(spec)
        self._inflight += 1
        if len(groups) == 1:
            shard = next(iter(groups))
            self.single_home_txns += 1
            self._t_single_home.inc()
            self.sim.spawn(
                self._single_home(ctx, spec, self.nodes[shard]),
                name="coord.txn%s" % (ctx.txn_id,),
            )
        else:
            self.cross_shard_txns += 1
            self._t_cross_shard.inc()
            self.sim.spawn(
                self._coordinate(ctx, groups),
                name="coord.txn%s" % (ctx.txn_id,),
            )
        return True

    def drain(self):
        """No more submissions; nodes drain once 2PC traffic quiesces.

        Coordinators submit branches (and retried rounds) after the last
        client arrival, so node queues can only be sealed once every
        in-flight coordinator has finished.
        """
        self._draining = True
        self.sim.spawn(self._drain_when_idle(), name="cluster.drain")

    @property
    def queue_depth(self):
        return sum(node.engine.queue_depth for node in self.nodes)

    def _drain_when_idle(self):
        while self._inflight > 0:
            self._idle = self.sim.event()
            yield WaitEvent(self._idle)
        for node in self.nodes:
            node.engine.drain()

    def _txn_done(self):
        self._inflight -= 1
        if self._inflight == 0 and self._idle is not None:
            idle, self._idle = self._idle, None
            idle.fire()

    # ------------------------------------------------------------------
    # Single-home fast path
    # ------------------------------------------------------------------

    def _single_home(self, ctx, spec, node):
        try:
            yield from self.network.send(
                self.COORD, node.node_id, self.topology.request_bytes
            )
            node.engine.submit(ctx, spec)
        finally:
            self._txn_done()

    # ------------------------------------------------------------------
    # Two-phase commit
    # ------------------------------------------------------------------

    def _coordinate(self, ctx, groups):
        try:
            tracer = self.tracer
            policy = self.retry_policy
            tracer.begin_transaction(ctx)
            committed = False
            reason = None
            for attempt in range(policy.max_attempts):
                if attempt:
                    ctx.attempts += 1
                    self._t_retries.inc()
                    policy.note_retry(reason or "abort")
                    yield policy.backoff(attempt, self.retry_rng)
                ctx.abort_reason = None
                ok, reason = yield from self._attempt_2pc(ctx, groups)
                if ok:
                    committed = True
                    break
            if not committed:
                final = reason or "abort"
                ctx.abort_reason = final
                policy.note_give_up(final)
                self.coord_failed_by_reason[final] = (
                    self.coord_failed_by_reason.get(final, 0) + 1
                )
                self.telemetry.counter("cluster.failed.%s" % (final,)).inc()
            tracer.end_transaction(ctx, committed)
            self.observe_txn(ctx, committed)
        finally:
            self._txn_done()

    def _attempt_2pc(self, ctx, groups):
        """Generator: one 2PC round.  Evaluates to (committed, reason)."""
        sim = self.sim
        topology = self.topology
        branches = [
            Branch(
                TransactionContext(sim, "%s/n%d" % (ctx.txn_id, shard), ctx.txn_type),
                TxnSpec(ctx.txn_type, ops),
                shard,
                sim,
            )
            for shard, ops in groups.items()
        ]
        check = self.check
        if check.enabled:
            check.twopc_begin(
                ctx, [(branch.ctx, branch.node_id) for branch in branches]
            )
        # Phase 1 — prepare: one courier per branch carries the request
        # out and the vote back; the couriers overlap, the coordinator
        # pays the slowest.
        arrivals = []
        for branch in branches:
            arrived = sim.event()
            sim.spawn(
                self._prepare_branch(branch, arrived),
                name="coord.prep.%s" % (branch.ctx.txn_id,),
            )
            arrivals.append(arrived)
        started = sim.now
        for arrived in arrivals:
            yield WaitEvent(arrived)
        prepare_wait = sim.now - started
        self._t_prepare_wait.observe(prepare_wait)
        self.tracer.record(ctx, "dist_prepare_wait", prepare_wait, site="cluster")
        commit = all(branch.vote for branch in branches)
        # The decision point: force the outcome to the coordinator log
        # before telling anyone (presumed-nothing 2PC).
        if self.coord_disk is not None:
            yield from self.coord_disk.write(topology.decision_bytes)
            yield from self.coord_disk.flush()
        if check.enabled:
            check.twopc_decision(
                ctx, commit, logged=True if self.coord_disk is not None else None
            )
        # Phase 2 — decision: only voted-yes participants are parked on
        # the decision event (no-voters already released and left).
        started = sim.now
        acks = []
        for branch in branches:
            if not branch.vote:
                continue
            acked = sim.event()
            sim.spawn(
                self._decide_branch(branch, commit, acked),
                name="coord.decide.%s" % (branch.ctx.txn_id,),
            )
            acks.append(acked)
        for acked in acks:
            yield WaitEvent(acked)
        if acks:
            commit_wait = sim.now - started
            self._t_commit_wait.observe(commit_wait)
            self.tracer.record(ctx, "dist_commit_wait", commit_wait, site="cluster")
        # Fold branch-local traced time (lock waits, prepare flushes)
        # into the global trace so engine factors stay visible for
        # cross-shard transactions.
        for branch in branches:
            self._merge_branch_trace(ctx, branch.ctx)
        if commit:
            return True, None
        for branch in branches:
            if branch.reason:
                return False, branch.reason
        return False, "abort"

    def _prepare_branch(self, branch, arrived):
        topology = self.topology
        yield from self.network.send(
            self.COORD, branch.node_id, topology.request_bytes
        )
        self.nodes[branch.node_id].engine.submit_branch(branch)
        yield WaitEvent(branch.prepared)
        yield from self.network.send(
            branch.node_id, self.COORD, topology.vote_bytes
        )
        arrived.fire(branch.vote)

    def _decide_branch(self, branch, commit, acked):
        topology = self.topology
        yield from self.network.send(
            self.COORD, branch.node_id, topology.decision_bytes
        )
        branch.decision.fire(commit)
        yield WaitEvent(branch.done)
        yield from self.network.send(
            branch.node_id, self.COORD, topology.ack_bytes
        )
        acked.fire()

    @staticmethod
    def _merge_branch_trace(ctx, branch_ctx):
        if branch_ctx.durations:
            durations = ctx.durations
            for key, value in branch_ctx.durations.items():
                durations[key] = durations.get(key, 0.0) + value
        if branch_ctx.under:
            under = ctx.under
            for parent_key, children in branch_ctx.under.items():
                per_child = under.setdefault(parent_key, {})
                for child_key, value in children.items():
                    per_child[child_key] = per_child.get(child_key, 0.0) + value

    # ------------------------------------------------------------------
    # Accounting (RunResult protocol)
    # ------------------------------------------------------------------

    def observe_txn(self, ctx, committed):
        if self.check.enabled:
            self.check.finish(ctx, committed)
        tm = self.telemetry
        if committed:
            self._t_committed.inc()
            if tm.enabled:
                tm.histogram("cluster.latency.%s" % (ctx.txn_type,)).observe(
                    self.sim.now - ctx.birth
                )
        else:
            self._t_failed.inc()
            if tm.enabled:
                tm.event(
                    "cluster.txn_failed",
                    txn=ctx.txn_id,
                    txn_type=ctx.txn_type,
                    attempts=ctx.attempts,
                    reason=ctx.abort_reason or "abort",
                )

    @property
    def aborts_by_reason(self):
        """Per-attempt aborts across all nodes (branches included)."""
        merged = {}
        for node in self.nodes:
            for reason, count in node.engine.aborts_by_reason.items():
                merged[reason] = merged.get(reason, 0) + count
        return merged

    @property
    def failed_by_reason(self):
        """Never-committed transactions: node-level + coordinator give-ups."""
        merged = dict(self.coord_failed_by_reason)
        for node in self.nodes:
            for reason, count in node.engine.failed_by_reason.items():
                merged[reason] = merged.get(reason, 0) + count
        return merged

    @property
    def aborts(self):
        return sum(self.aborts_by_reason.values())

    @property
    def failed_txns(self):
        return sum(self.failed_by_reason.values())

    @property
    def worker_crashes(self):
        return sum(node.engine.worker_crashes for node in self.nodes)

    def __repr__(self):
        return "<Cluster nodes=%d router=%s>" % (
            len(self.nodes),
            self.router.kind,
        )
