"""One cluster node: a full engine stack behind a scoping proxy.

Every subsystem in the tree (lock manager, buffer pool, disks, WAL,
workers) reaches shared services through its ``sim`` reference:
``sim.now`` / ``sim.spawn`` / ``sim.event`` for the kernel,
``sim.telemetry`` for metrics, ``sim.faults`` for injection.  That one
seam makes multi-node hosting a proxy, not a rewrite: a :class:`NodeSim`
delegates kernel calls to the real simulator but presents a
``node=<id>``-labeled telemetry view, and the node's engine is built
with name-prefixed random streams (``node3/mysql.engine``), so N engines
coexist in one simulator without sharing a single RNG draw or metric key
— and without any engine code knowing clusters exist.

Single-node runs never construct a NodeSim (the runner passes the bare
simulator), so the pre-cluster fast paths and goldens are untouched.
"""


class NodeSim:
    """A per-node view of the simulator: same clock, scoped telemetry."""

    __slots__ = ("_sim", "node_id", "telemetry", "faults", "check")

    def __init__(self, sim, node_id, telemetry=None, faults=None):
        self._sim = sim
        self.node_id = node_id
        self.telemetry = (
            telemetry if telemetry is not None else sim.telemetry
        )
        self.faults = faults if faults is not None else sim.faults
        # One shared recorder: the oracles need a single global event
        # order across every node (2PC rounds span shards).
        self.check = sim.check

    @property
    def now(self):
        return self._sim.now

    @property
    def current(self):
        return self._sim.current

    def spawn(self, gen, name=None):
        return self._sim.spawn(gen, name=name)

    def event(self):
        return self._sim.event()

    def __repr__(self):
        return "<NodeSim node=%r of %r>" % (self.node_id, self._sim)


class Node:
    """One shard: node id + scoped sim/streams + the engine they host."""

    def __init__(self, node_id, sim, streams, make_engine):
        self.node_id = node_id
        self.sim = NodeSim(
            sim,
            node_id,
            telemetry=sim.telemetry.labeled(node=node_id),
            faults=sim.faults,
        )
        self.streams = streams.scoped("node%d/" % node_id)
        self.engine = make_engine(self.sim, self.streams)

    def __repr__(self):
        return "<Node %d %s>" % (self.node_id, self.engine.name)
