"""Parallel experiment execution: schema, artifacts, executor, cache.

The layer between "a run is a pure function of its config" and "run
hundreds of them as fast as the hardware allows":

- :mod:`repro.exec.schema` — one declarative field schema per config
  class, with canonical ``to_dict``/``from_dict`` serialisation and a
  stable content digest;
- :mod:`repro.exec.artifact` — :class:`RunArtifact`, the picklable
  plain-data extract of a run that crosses process boundaries without
  pinning simulator object graphs;
- :mod:`repro.exec.executor` — :class:`Executor` with inline and
  spawn-based process-pool backends, deterministic result ordering,
  and an optional content-addressed on-disk cache keyed by
  code version + config digest.

See ``docs/execution.md``.

Only the schema loads eagerly: config modules throughout the tree
import :mod:`repro.exec.schema` (which initialises this package), so
the artifact/executor names — which reach back into the simulator
tree — resolve lazily via module ``__getattr__`` to keep the import
graph acyclic.
"""

from repro.exec.schema import (
    CONFIG_REGISTRY,
    ENUM_REGISTRY,
    canonical_json,
    config_digest,
    config_fields,
    from_canonical,
    from_dict,
    register_config,
    register_enum,
    replaced,
    to_canonical,
    to_dict,
)

_LAZY = {
    "ARTIFACT_SCHEMA_VERSION": "repro.exec.artifact",
    "RunArtifact": "repro.exec.artifact",
    "Executor": "repro.exec.executor",
    "code_version": "repro.exec.executor",
    "run_many": "repro.exec.executor",
}

__all__ = [
    "CONFIG_REGISTRY",
    "ENUM_REGISTRY",
    "canonical_json",
    "config_digest",
    "config_fields",
    "from_canonical",
    "from_dict",
    "register_config",
    "register_enum",
    "replaced",
    "to_canonical",
    "to_dict",
] + sorted(_LAZY)


def __getattr__(name):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value
