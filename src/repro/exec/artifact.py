"""Picklable run artifacts: everything a sweep needs, nothing live.

A :class:`~repro.bench.runner.RunResult` is deliberately heavyweight —
it pins the whole simulator object graph (kernel, engines, lock tables,
buffer pools) so interactive analysis can poke at anything.  That graph
cannot cross a process boundary, and holding one per run makes a
500-run sweep balloon.  :class:`RunArtifact` is the extract: plain data
only (transaction traces, the metrics snapshot, the recorded history,
per-reason accounting, the check report), picklable by construction,
and carrying the canonical config payload + content digest it was
produced from.

Everything the multi-run drivers read off a ``RunResult`` is mirrored
here under the same names — ``summary``, ``latencies``,
``throughput_tps``, ``metrics_snapshot()``, ``check_report()``,
``outcome_counts`` and friends — so sweeps, the profiler adapter and
the fuzzer work identically on either.  ``digest()`` equals
``repro.bench.digest.run_digest`` of the originating result, which is
how the parallel-equals-serial tests pin byte-identity.
"""

from array import array

from repro.sim.stats import summarize
from repro.telemetry import snapshot_node_slice, snapshot_rollup

#: Bump when the pickled layout changes; part of the cache key.
ARTIFACT_SCHEMA_VERSION = 1


class RunArtifact:
    """The plain-data outcome of one experiment run."""

    __slots__ = (
        "config_data",
        "config_digest",
        "schema_version",
        "warmup_count",
        "final_clock",
        "dispatch_count",
        "all_traces",
        "metrics",
        "event_jsonl",
        "abort_counts",
        "failed_counts",
        "failed_txns",
        "fault_counts",
        "outcome_counts",
        "txn_outcomes",
        "check_violations",
        "history",
        "cluster_stats",
    )

    def __init__(self, **fields):
        self.schema_version = ARTIFACT_SCHEMA_VERSION
        for name in self.__slots__:
            if name == "schema_version":
                continue
            setattr(self, name, fields.pop(name))
        if fields:
            raise TypeError("unknown artifact fields: %s" % sorted(fields))

    @classmethod
    def from_result(cls, result):
        """Extract the picklable artifact from a finished run."""
        config = result.config
        engine = result.engine
        cluster_stats = None
        if hasattr(engine, "single_home_txns"):
            cluster_stats = {
                "single_home_txns": engine.single_home_txns,
                "cross_shard_txns": engine.cross_shard_txns,
            }
        history = result.history
        check_violations = result.check_report()
        return cls(
            config_data=config.to_dict(),
            config_digest=config.config_digest(),
            warmup_count=result.warmup_count,
            final_clock=result.sim.now,
            dispatch_count=result.sim.dispatch_count,
            all_traces=list(result.log.traces),
            metrics=result.metrics_snapshot(),
            event_jsonl=result.event_log_jsonl(),
            abort_counts=result.abort_counts,
            failed_counts=result.failed_counts,
            failed_txns=result.failed_txns,
            fault_counts=result.fault_counts,
            outcome_counts=result.outcome_counts,
            txn_outcomes=result.txn_outcomes,
            check_violations=check_violations,
            history=history,
            cluster_stats=cluster_stats,
        )

    # -- config ---------------------------------------------------------

    @property
    def config(self):
        """The :class:`ExperimentConfig` rebuilt from the canonical form."""
        from repro.exec.schema import from_dict

        return from_dict(self.config_data)

    # -- the measurement set (mirrors RunResult) ------------------------

    @property
    def traces(self):
        """Committed, post-warmup traces (the measurement set)."""
        return [
            t
            for t in self.all_traces
            if t.committed and t.txn_id >= self.warmup_count
        ]

    @property
    def committed_count(self):
        """Committed transactions across the whole run (warmup included)."""
        return sum(1 for t in self.all_traces if t.committed)

    @property
    def latencies(self):
        # Packed doubles, not a list of boxed floats: a large sweep's
        # latency vectors are 3-4x smaller and feed numpy zero-copy.
        return array("d", (t.latency for t in self.traces))

    def latencies_of(self, txn_type):
        return array(
            "d", (t.latency for t in self.traces if t.txn_type == txn_type)
        )

    @property
    def summary(self):
        return summarize(self.latencies)

    @property
    def throughput_tps(self):
        """Completed transactions per second of virtual time."""
        traces = self.traces
        if not traces:
            return 0.0
        span = max(t.end for t in traces) - min(t.birth for t in traces)
        if span <= 0:
            return 0.0
        return len(traces) / (span / 1_000_000.0)

    # -- telemetry ------------------------------------------------------

    def metrics_snapshot(self):
        """The metrics report captured at the end of the run."""
        return self.metrics

    def event_log_jsonl(self):
        """The structured event log as JSON lines (empty when disabled)."""
        return self.event_jsonl

    def node_metrics_snapshot(self, node_id):
        """One node's slice of the metrics, with the label stripped."""
        return snapshot_node_slice(self.metrics, node_id)

    def metrics_rollup(self):
        """Cluster-wide totals: labeled instruments merged by base name."""
        return snapshot_rollup(self.metrics)

    # -- robustness + correctness accounting ----------------------------

    @property
    def shed_txns(self):
        return self.failed_counts.get("shed", 0)

    def check_report(self):
        """The oracle verdict computed where the run executed.

        ``[]`` means clean; ``None`` when the run had ``check=False``.
        """
        return self.check_violations

    # -- identity -------------------------------------------------------

    def digest(self):
        """SHA-256 over the canonical run payload (= ``run_digest``)."""
        from repro.bench.digest import run_digest

        return run_digest(self)

    def __repr__(self):
        return "<RunArtifact %s n=%d digest=%s...>" % (
            self.config_data.get("engine"),
            len(self.traces),
            self.config_digest[:12],
        )
