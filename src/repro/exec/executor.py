"""Run orchestration: inline and process-pool execution of experiments.

Every run of the simulator is a pure function of its
:class:`ExperimentConfig` — same config, same bytes, in any interpreter
(pinned by the hash-seed invariance and equivalence-golden tests).
That determinism makes parallel fan-out provably equivalent to serial
execution, which is what this module exploits: an :class:`Executor`
takes a list of configs and returns one picklable
:class:`~repro.exec.artifact.RunArtifact` per config, in input order,
either inline (``jobs=1``) or across a spawn-based process pool.

Workers receive the config as its canonical ``to_dict()`` payload and
rebuild it with :func:`~repro.exec.schema.from_dict` — nothing but
plain data crosses the pipe in either direction, so no simulator object
graph is ever pickled or pinned.

The optional on-disk cache is content-addressed: the key is the
SHA-256 of ``code version + config digest``, where the code version
hashes every source file of the ``repro`` package.  Any source edit or
config change misses the cache; a hit is byte-identical to a fresh run
by the determinism argument above.  Writes are atomic
(temp file + ``os.replace``) so concurrent executors sharing a cache
directory never observe torn artifacts.
"""

import hashlib
import os
import pickle
import tempfile

# NOTE: never import repro.bench.runner (or anything that leads there)
# at module level.  Config modules import repro.exec.schema, which
# initialises the repro.exec package; a top-level runner import here
# would close that loop into a partially-initialised-module error.

_CODE_VERSION = None


def code_version():
    """A digest of the ``repro`` package sources (cache-key component).

    Computed once per process: SHA-256 over every ``.py`` file under
    the package root, walked in sorted relative-path order.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode("utf-8"))
                digest.update(b"\0")
                with open(path, "rb") as handle:
                    digest.update(handle.read())
                digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


def _execute(config_data):
    """Run one experiment from its canonical payload; plain data out."""
    from repro.bench.runner import run_experiment
    from repro.exec.artifact import RunArtifact
    from repro.exec.schema import from_dict

    result = run_experiment(from_dict(config_data))
    return RunArtifact.from_result(result)


class Executor:
    """Runs experiment configs inline or across a process pool.

    ``jobs=1`` executes in-process (no pool, no pickling); ``jobs>1``
    fans out over a ``spawn`` process pool — spawn-safe by construction
    since workers receive only canonical config payloads and rebuild
    everything from source.  Results always come back in input order,
    regardless of completion order.

    ``cache_dir`` enables the content-addressed artifact cache; reads
    and writes happen on the parent side so a cache hit costs no
    worker round-trip.
    """

    def __init__(self, jobs=1, cache_dir=None, mp_context="spawn"):
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %r" % (jobs,))
        self.jobs = jobs
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        self.mp_context = mp_context

    # -- cache ----------------------------------------------------------

    def _cache_key(self, config_digest):
        blob = ("%s:%s" % (code_version(), config_digest)).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def _cache_path(self, key):
        return os.path.join(self.cache_dir, key[:2], key + ".pkl")

    def _cache_load(self, key):
        try:
            with open(self._cache_path(key), "rb") as handle:
                return pickle.load(handle)
        except (FileNotFoundError, EOFError, pickle.UnpicklingError):
            return None

    def _cache_store(self, key, artifact):
        path = self._cache_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(artifact, handle, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- execution ------------------------------------------------------

    def run(self, configs, progress=None):
        """Execute every config; artifacts return in input order.

        ``progress``, if given, is called as ``progress(done, total)``
        after each run completes (cache hits included).
        """
        from repro.exec.schema import to_dict

        configs = list(configs)
        total = len(configs)
        payloads = [to_dict(config) for config in configs]
        digests = [config.config_digest() for config in configs]
        artifacts = [None] * total
        done = 0

        # Parent-side cache reads first: hits never reach the pool.
        keys = [None] * total
        if self.cache_dir is not None:
            for i, digest in enumerate(digests):
                keys[i] = self._cache_key(digest)
                artifacts[i] = self._cache_load(keys[i])
                if artifacts[i] is not None:
                    done += 1
                    if progress is not None:
                        progress(done, total)

        # Identical configs run once; determinism makes the shared
        # artifact indistinguishable from running each separately.
        pending = {}
        for i, digest in enumerate(digests):
            if artifacts[i] is None:
                pending.setdefault(digest, []).append(i)
        order = sorted(pending, key=lambda d: pending[d][0])

        if order:
            if self.jobs == 1 or len(order) == 1:
                fresh = (
                    (digest, _execute(payloads[pending[digest][0]]))
                    for digest in order
                )
            else:
                fresh = self._pool_run(order, pending, payloads)
            for digest, artifact in fresh:
                for i in pending[digest]:
                    artifacts[i] = artifact
                    done += 1
                    if progress is not None:
                        progress(done, total)
                if self.cache_dir is not None:
                    self._cache_store(keys[pending[digest][0]], artifact)
        return artifacts

    def _pool_run(self, order, pending, payloads):
        import concurrent.futures
        import multiprocessing

        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.jobs, len(order))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = [
                (digest, pool.submit(_execute, payloads[pending[digest][0]]))
                for digest in order
            ]
            # Collect in submission order: completion order never leaks
            # into result order.
            for digest, future in futures:
                yield digest, future.result()

    def run_one(self, config):
        """Execute a single config; returns its :class:`RunArtifact`."""
        return self.run([config])[0]


def run_many(configs, jobs=1, cache_dir=None, progress=None):
    """One-shot convenience: ``Executor(jobs, cache_dir).run(configs)``."""
    return Executor(jobs=jobs, cache_dir=cache_dir).run(configs, progress=progress)
