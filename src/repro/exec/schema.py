"""The canonical config schema: one declarative field list per class.

Every configuration class in the tree (:class:`ExperimentConfig`, the
engine configs, :class:`FaultPlan`, :class:`ReplicationConfig`,
:class:`Topology`, the disk and network parameter blocks) registers
here via :func:`register_config`.  Registration derives the class's
**field schema** from its ``__init__`` signature — every parameter *is*
a field, stored under the same attribute name — and injects four
methods:

- ``to_dict()`` — canonical, JSON-serialisable, picklable dict form
  (nested configs become tagged sub-dicts);
- ``from_dict(data)`` — classmethod inverse; values pass back through
  the constructor, which re-validates and re-normalises them;
- ``replaced(**overrides)`` — a copy with fields replaced, derived from
  the schema rather than a hand-copied dict (the old hand-maintained
  list in ``ExperimentConfig.replaced`` silently dropped newly added
  fields; deriving it from the signature makes that drift impossible);
- ``config_digest()`` — a stable SHA-256 content digest of the
  canonical form.

The digest is the identity of an experiment: the process-pool executor
keys its on-disk artifact cache by ``(code version, config digest)``,
and the parallel-equals-serial tests compare run digests of configs
shipped to workers as ``to_dict()`` payloads.  Canonicalisation is
hash-seed independent (sorted keys, sorted set elements) and
float-exact (``float.hex``), so equal configs digest equal in any
interpreter.
"""

import hashlib
import inspect
import json

#: tag (class name) -> registered config class.
CONFIG_REGISTRY = {}

#: tag (class name) -> registered enum class.
ENUM_REGISTRY = {}


def _derive_fields(cls):
    """The field schema: every ``__init__`` parameter, in order."""
    fields = []
    for name, param in inspect.signature(cls.__init__).parameters.items():
        if name == "self":
            continue
        if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
            raise TypeError(
                "%s.__init__ uses *args/**kwargs; a registered config "
                "needs an explicit parameter list" % (cls.__name__,)
            )
        fields.append(name)
    return tuple(fields)


def register_config(cls):
    """Class decorator: derive the field schema and inject the API."""
    fields = _derive_fields(cls)
    cls.__config_fields__ = fields
    CONFIG_REGISTRY[cls.__name__] = cls
    if "to_dict" not in cls.__dict__:
        cls.to_dict = _to_dict_method
    if "from_dict" not in cls.__dict__:
        cls.from_dict = classmethod(_from_dict_classmethod)
    if "replaced" not in cls.__dict__:
        cls.replaced = _replaced_method
    if "config_digest" not in cls.__dict__:
        cls.config_digest = _config_digest_method
    return cls


def register_enum(enum_cls):
    """Register an enum so its members canonicalise and round-trip."""
    ENUM_REGISTRY[enum_cls.__name__] = enum_cls
    return enum_cls


def config_fields(obj_or_cls):
    """The registered field schema of a config class (or instance)."""
    cls = obj_or_cls if isinstance(obj_or_cls, type) else type(obj_or_cls)
    try:
        return cls.__config_fields__
    except AttributeError:
        raise TypeError(
            "%s is not a registered config class" % (cls.__name__,)
        ) from None


def to_canonical(value):
    """Recursively reduce a config value to plain JSON-able data.

    Scalars pass through; tuples/lists become lists; sets become sorted
    lists (hash-seed independent); enums and registered config objects
    become tagged dicts.  Constructors re-normalise the relaxed forms on
    the way back in (``tuple(...)``, ``frozenset(...)``, enum lookup),
    which is what makes ``from_dict(to_dict(c))`` digest-identical.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    cls = type(value)
    if cls.__name__ in CONFIG_REGISTRY and CONFIG_REGISTRY[cls.__name__] is cls:
        return _config_to_dict(value)
    if cls.__name__ in ENUM_REGISTRY and ENUM_REGISTRY[cls.__name__] is cls:
        return {"__enum__": cls.__name__, "value": value.value}
    if isinstance(value, (list, tuple)):
        return [to_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(
            (to_canonical(v) for v in value),
            key=lambda v: json.dumps(v, sort_keys=True),
        )
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise TypeError(
                    "config dicts need string keys, got %r" % (key,)
                )
        return {key: to_canonical(v) for key, v in value.items()}
    raise TypeError(
        "cannot canonicalise %r (%s); register the class with "
        "repro.exec.schema.register_config" % (value, cls.__name__)
    )


#: Modules that register config classes as an import side effect.
#: Registration normally happens because the *caller* imported these
#: before serialising, but a fresh interpreter deserialising a payload
#: (a spawn pool worker, a cache read) has imported nothing — so an
#: unknown tag first triggers one pass through this list before it is
#: an error.
_REGISTERING_MODULES = (
    "repro.bench.runner",
    "repro.cluster.coordinator",
    "repro.engines.mysql",
    "repro.engines.postgres",
    "repro.engines.voltdb",
    "repro.faults.plan",
    "repro.replication.config",
    "repro.sim.disk",
    "repro.sim.network",
    "repro.wal.mysql_log",
)


def _lookup_tag(registry, tag):
    try:
        return registry[tag]
    except KeyError:
        import importlib

        for name in _REGISTERING_MODULES:
            importlib.import_module(name)
        return registry[tag]  # raises KeyError again if truly unknown


def from_canonical(value):
    """Inverse of :func:`to_canonical` (constructors re-normalise)."""
    if isinstance(value, dict):
        if "__config__" in value:
            return from_dict(value)
        if "__enum__" in value:
            try:
                enum_cls = _lookup_tag(ENUM_REGISTRY, value["__enum__"])
            except KeyError:
                raise TypeError(
                    "unknown enum tag %r" % (value["__enum__"],)
                ) from None
            return enum_cls(value["value"])
        return {key: from_canonical(v) for key, v in value.items()}
    if isinstance(value, list):
        return [from_canonical(v) for v in value]
    return value


def _config_to_dict(obj):
    data = {"__config__": type(obj).__name__}
    for field in config_fields(obj):
        try:
            raw = getattr(obj, field)
        except AttributeError:
            raise AttributeError(
                "%s.__init__ takes %r but the instance has no such "
                "attribute; schema fields must be stored under their "
                "parameter name" % (type(obj).__name__, field)
            ) from None
        data[field] = to_canonical(raw)
    return data


def to_dict(obj):
    """Canonical dict form of a registered config object."""
    return _config_to_dict(obj)


def from_dict(data):
    """Rebuild a config object from its :func:`to_dict` form."""
    try:
        tag = data["__config__"]
    except (TypeError, KeyError):
        raise TypeError(
            "not a config payload (missing '__config__'): %r" % (data,)
        ) from None
    try:
        cls = _lookup_tag(CONFIG_REGISTRY, tag)
    except KeyError:
        raise TypeError("unknown config tag %r" % (tag,)) from None
    kwargs = {
        field: from_canonical(value)
        for field, value in data.items()
        if field != "__config__"
    }
    return cls(**kwargs)


def replaced(obj, **overrides):
    """A copy of ``obj`` with the given fields replaced (schema-driven)."""
    fields = {name: getattr(obj, name) for name in config_fields(obj)}
    unknown = sorted(set(overrides) - set(fields))
    if unknown:
        raise TypeError(
            "%s has no field(s) %s (schema: %s)"
            % (type(obj).__name__, ", ".join(unknown),
               ", ".join(config_fields(obj)))
        )
    fields.update(overrides)
    return type(obj)(**fields)


def _hex_floats(value):
    """Exact float representation for digesting (matches bench.digest)."""
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, dict):
        return {key: _hex_floats(val) for key, val in value.items()}
    if isinstance(value, list):
        return [_hex_floats(val) for val in value]
    return value


def canonical_json(obj):
    """The canonical JSON text of a config (sorted keys, hex floats)."""
    return json.dumps(
        _hex_floats(to_canonical(obj)), sort_keys=True, separators=(",", ":")
    )


def config_digest(obj):
    """Stable SHA-256 content digest of a config's canonical form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


# -- injected methods --------------------------------------------------


def _to_dict_method(self):
    """Canonical, JSON-serialisable dict form of this config."""
    return _config_to_dict(self)


def _from_dict_classmethod(cls, data):
    """Rebuild from :meth:`to_dict` output (re-validated on the way)."""
    obj = from_dict(data)
    if not isinstance(obj, cls):
        raise TypeError(
            "payload tag %r does not match %s"
            % (data.get("__config__"), cls.__name__)
        )
    return obj


def _replaced_method(self, **overrides):
    """A copy of this config with fields replaced."""
    return replaced(self, **overrides)


def _config_digest_method(self):
    """Stable SHA-256 content digest of this config."""
    return config_digest(self)
