"""repro — reproduction of "A Top-Down Approach to Achieving Performance
Predictability in Database Systems" (Huang, Mozafari, Schoenebeck,
Wenisch; SIGMOD 2017).

The package provides:

- **TProfiler** (:mod:`repro.core`) — the paper's variance profiler:
  transaction-scoped tracing, the variance tree, specificity scoring, and
  the iterative-refinement loop.
- **VATS** (:mod:`repro.lockmgr`) — Variance-Aware Transaction Scheduling
  plus the FCFS and RS baselines, inside a full 2PL lock manager.
- **Engine models** (:mod:`repro.engines`) — simulated MySQL, Postgres
  and VoltDB servers with realistic call graphs, built on a deterministic
  discrete-event simulator (:mod:`repro.sim`) so latency variance is
  measurable without CPython interpreter noise.
- **Mitigations** — Lazy LRU Update (:mod:`repro.bufferpool`), parallel
  logging and flush policies (:mod:`repro.wal`), and variance-aware
  tuning knobs throughout.
- **Workloads** (:mod:`repro.workloads`) — TPC-C, SEATS, TATP, Epinions
  and YCSB generators with the paper's contention profiles.
- **Harness** (:mod:`repro.bench`) — experiment runner and comparison
  tables; the ``benchmarks/`` directory regenerates every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import ExperimentConfig, run_experiment

    fcfs = run_experiment(ExperimentConfig(engine="mysql", workload="tpcc"))
    print(fcfs.summary)
"""

from repro.bench import (
    EngineProfiledSystem,
    ExperimentConfig,
    RunResult,
    ratio_row,
    ratios,
    run_experiment,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    NAMED_PLANS,
    NO_FAULTS,
    RetryPolicy,
    TransientIOError,
    named_plan,
)
from repro.core import (
    CallGraph,
    NaiveProfiler,
    TProfiler,
    Tracer,
    TransactionContext,
    TransactionLog,
    VarianceTree,
    render_profile,
)
from repro.lockmgr import (
    CATSScheduler,
    FCFSScheduler,
    LockManager,
    LockMode,
    RandomScheduler,
    VATSScheduler,
    make_scheduler,
)
from repro.sim import Simulator, Streams, lp_norm, summarize
from repro.tuning import ParameterSweep, TuningAdvisor
from repro.workloads import make_workload

__version__ = "1.0.0"

__all__ = [
    "CATSScheduler",
    "CallGraph",
    "EngineProfiledSystem",
    "ExperimentConfig",
    "FCFSScheduler",
    "FaultInjector",
    "FaultPlan",
    "LockManager",
    "LockMode",
    "NAMED_PLANS",
    "NO_FAULTS",
    "NaiveProfiler",
    "ParameterSweep",
    "RandomScheduler",
    "RetryPolicy",
    "RunResult",
    "Simulator",
    "Streams",
    "TProfiler",
    "Tracer",
    "TransactionContext",
    "TransactionLog",
    "TransientIOError",
    "TuningAdvisor",
    "VATSScheduler",
    "VarianceTree",
    "__version__",
    "lp_norm",
    "make_scheduler",
    "make_workload",
    "named_plan",
    "ratio_row",
    "ratios",
    "render_profile",
    "run_experiment",
    "summarize",
]
