"""The metrics registry: counters, gauges, quantile histograms, events.

Design constraints, in order:

1. **Zero virtual time.**  Instruments only mutate Python state — no
   emitter ever yields a kernel command, so enabling telemetry cannot
   perturb a simulation's results (the Figure 5 overhead study must be
   bit-identical with telemetry on or off).
2. **Near-zero wall time when disabled.**  Hot paths hold instrument
   objects obtained once at construction; the disabled registry hands
   out shared null instruments whose methods are empty, and exposes
   ``enabled`` so the hottest loops (the kernel dispatch loop) can skip
   even the no-op call.
3. **Determinism.**  Metric values are stamped with the virtual clock
   and derive only from simulation state, so same-seed runs produce
   byte-identical snapshots and event logs.

Usage::

    registry = MetricsRegistry()
    sim = Simulator(telemetry=registry)
    registry.bind_clock(sim)
    ...
    registry.counter("lockmgr.deadlocks").inc()
    registry.histogram("disk.data.service_time").observe(125.0)
    registry.event("deadlock", txn=42, obj="stock:17")
    report = registry.snapshot()
"""

from repro.telemetry.events import EventLog
from repro.telemetry.sketch import GKSketch


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def __repr__(self):
        return "Counter(%s=%r)" % (self.name, self.value)


class Gauge:
    """A point-in-time level; the high-water mark is kept alongside."""

    __slots__ = ("name", "value", "max")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self.max = 0

    def set(self, value):
        self.value = value
        if value > self.max:
            self.max = value

    def __repr__(self):
        return "Gauge(%s=%r, max=%r)" % (self.name, self.value, self.max)


class Histogram:
    """Moments plus a streaming quantile sketch; no sample retention."""

    __slots__ = ("name", "count", "sum", "min", "max", "_sketch")

    def __init__(self, name, epsilon=0.01):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._sketch = GKSketch(epsilon)

    def observe(self, value):
        value = float(value)
        self._sketch.observe(value)  # validates NaN
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q):
        return self._sketch.quantile(q)

    def snapshot(self):
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self):
        return "Histogram(%s, count=%d, mean=%.2f)" % (
            self.name,
            self.count,
            self.mean,
        )


class _NullCounter:
    __slots__ = ()

    def inc(self, n=1):
        pass


class _NullGauge:
    __slots__ = ()
    value = 0
    max = 0

    def set(self, value):
        pass


class _NullHistogram:
    __slots__ = ()
    count = 0
    sum = 0.0
    mean = 0.0
    min = None
    max = None

    def observe(self, value):
        pass

    def quantile(self, q):
        raise ValueError("quantile of disabled histogram")

    def snapshot(self):
        return {"count": 0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments plus the structured event log for one run."""

    enabled = True

    def __init__(self, clock=None, event_capacity=65536, sketch_epsilon=0.01):
        self._clock = clock
        self.sketch_epsilon = sketch_epsilon
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self.events = EventLog(capacity=event_capacity)

    # ------------------------------------------------------------------
    # Clock binding
    # ------------------------------------------------------------------

    def bind_clock(self, clock):
        """Bind the virtual clock: a callable or anything with ``.now``."""
        if callable(clock):
            self._clock = clock
        else:
            self._clock = lambda: clock.now

    def now(self):
        return self._clock() if self._clock is not None else 0.0

    # ------------------------------------------------------------------
    # Instruments (get-or-create by name)
    # ------------------------------------------------------------------

    def counter(self, name):
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name):
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name, epsilon=None):
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, epsilon if epsilon is not None else self.sketch_epsilon
            )
        return instrument

    def event(self, kind, **fields):
        """Record a structured event stamped with the virtual clock."""
        self.events.emit(self.now(), kind, fields)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def snapshot(self):
        """Everything measured so far, as plain JSON-serialisable dicts."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": g.value, "max": g.max}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
            "events": {
                "emitted": self.events.emitted,
                "retained": len(self.events),
                "dropped": self.events.dropped,
            },
        }

    def __repr__(self):
        return "<MetricsRegistry counters=%d gauges=%d histograms=%d events=%d>" % (
            len(self._counters),
            len(self._gauges),
            len(self._histograms),
            len(self.events),
        )


class NullRegistry:
    """The disabled registry: every instrument is a shared no-op.

    Subsystems cache instruments at construction, so with this registry
    in place the per-emit cost is one empty method call — and the kernel
    skips even that by checking ``enabled`` once.
    """

    enabled = False

    def __init__(self):
        self.events = EventLog(capacity=1)

    def bind_clock(self, clock):
        pass

    def now(self):
        return 0.0

    def counter(self, name):
        return _NULL_COUNTER

    def gauge(self, name):
        return _NULL_GAUGE

    def histogram(self, name, epsilon=None):
        return _NULL_HISTOGRAM

    def event(self, kind, **fields):
        pass

    def snapshot(self):
        return {}

    def __repr__(self):
        return "<NullRegistry>"


#: Shared disabled registry; components default to this when the
#: simulator carries no telemetry.
NULL_REGISTRY = NullRegistry()
