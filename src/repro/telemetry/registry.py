"""The metrics registry: counters, gauges, quantile histograms, events.

Design constraints, in order:

1. **Zero virtual time.**  Instruments only mutate Python state — no
   emitter ever yields a kernel command, so enabling telemetry cannot
   perturb a simulation's results (the Figure 5 overhead study must be
   bit-identical with telemetry on or off).
2. **Near-zero wall time when disabled.**  Hot paths hold instrument
   objects obtained once at construction; the disabled registry hands
   out shared null instruments whose methods are empty, and exposes
   ``enabled`` so the hottest loops (the kernel dispatch loop) can skip
   even the no-op call.
3. **Determinism.**  Metric values are stamped with the virtual clock
   and derive only from simulation state, so same-seed runs produce
   byte-identical snapshots and event logs.

Usage::

    registry = MetricsRegistry()
    sim = Simulator(telemetry=registry)
    registry.bind_clock(sim)
    ...
    registry.counter("lockmgr.deadlocks").inc()
    registry.histogram("disk.data.service_time").observe(125.0)
    registry.event("deadlock", txn=42, obj="stock:17")
    report = registry.snapshot()
"""

from repro.telemetry.events import EventLog
from repro.telemetry.sketch import GKSketch


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def __repr__(self):
        return "Counter(%s=%r)" % (self.name, self.value)


class Gauge:
    """A point-in-time level; the high-water mark is kept alongside."""

    __slots__ = ("name", "value", "max")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self.max = 0

    def set(self, value):
        self.value = value
        if value > self.max:
            self.max = value

    def __repr__(self):
        return "Gauge(%s=%r, max=%r)" % (self.name, self.value, self.max)


class Histogram:
    """Moments plus a streaming quantile sketch; no sample retention.

    ``observe`` is the registry's hottest method, so it only updates the
    cheap moments inline and parks the value in a flat pending list; the
    batch folds into the GK sketch — in arrival order, so sketch state
    is identical to eager per-value folding — when a quantile or
    snapshot is asked for.  Anything reaching into ``_sketch`` directly
    must call :meth:`flush` first.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "_sketch", "_pending")

    def __init__(self, name, epsilon=0.01):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._sketch = GKSketch(epsilon)
        self._pending = []

    def observe(self, value):
        value = float(value)
        if value != value:
            raise ValueError("cannot observe NaN")
        self._pending.append(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def flush(self):
        """Fold pending observations into the sketch (arrival order)."""
        if self._pending:
            self._sketch.observe_many(self._pending)
            del self._pending[:]

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q):
        self.flush()
        return self._sketch.quantile(q)

    def snapshot(self):
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self):
        return "Histogram(%s, count=%d, mean=%.2f)" % (
            self.name,
            self.count,
            self.mean,
        )


class _NullCounter:
    __slots__ = ()

    def inc(self, n=1):
        pass


class _NullGauge:
    __slots__ = ()
    value = 0
    max = 0

    def set(self, value):
        pass


class _NullHistogram:
    __slots__ = ()
    count = 0
    sum = 0.0
    mean = 0.0
    min = None
    max = None

    def observe(self, value):
        pass

    def flush(self):
        pass

    def quantile(self, q):
        raise ValueError("quantile of disabled histogram")

    def snapshot(self):
        return {"count": 0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments plus the structured event log for one run."""

    enabled = True

    def __init__(self, clock=None, event_capacity=65536, sketch_epsilon=0.01):
        self._clock = clock
        self.sketch_epsilon = sketch_epsilon
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._flush_hooks = []
        self.events = EventLog(capacity=event_capacity)

    # ------------------------------------------------------------------
    # Clock binding
    # ------------------------------------------------------------------

    def bind_clock(self, clock):
        """Bind the virtual clock: a callable or anything with ``.now``."""
        if callable(clock):
            self._clock = clock
        else:
            self._clock = lambda: clock.now

    def now(self):
        return self._clock() if self._clock is not None else 0.0

    # ------------------------------------------------------------------
    # Instruments (get-or-create by name)
    # ------------------------------------------------------------------

    def counter(self, name):
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name):
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name, epsilon=None):
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, epsilon if epsilon is not None else self.sketch_epsilon
            )
        return instrument

    def event(self, kind, **fields):
        """Record a structured event stamped with the virtual clock."""
        self.events.emit(self.now(), kind, fields)

    def labeled(self, **labels):
        """A view of this registry that tags instrument names with labels.

        ``registry.labeled(node=3).counter("mysql.txns_committed")`` is
        the shared instrument named ``mysql.txns_committed{node=3}`` —
        one flat namespace, so a cluster of engines writes through
        per-node views into a single registry and the snapshot format
        stays plain string-keyed dicts.  Code that never calls
        ``labeled`` (every single-node run) produces byte-identical
        unlabeled snapshots.
        """
        return LabeledRegistry(self, labels)

    # ------------------------------------------------------------------
    # Deferred updates
    # ------------------------------------------------------------------

    def add_flush_hook(self, hook):
        """Register ``hook()`` to run on :meth:`flush` (and snapshots).

        Hot call sites may accumulate counts in plain attributes instead
        of paying a ``Counter.inc`` per event; their hook folds the
        accumulated total into the instrument.  Counter values are
        order-independent sums, so deferred folding yields the exact
        snapshot eager increments would.
        """
        self._flush_hooks.append(hook)

    def flush(self):
        """Drain all deferred instrument state registered via hooks."""
        for hook in self._flush_hooks:
            hook()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def snapshot(self):
        """Everything measured so far, as plain JSON-serialisable dicts."""
        self.flush()
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": g.value, "max": g.max}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
            "events": {
                "emitted": self.events.emitted,
                "retained": len(self.events),
                "dropped": self.events.dropped,
            },
        }

    def __repr__(self):
        return "<MetricsRegistry counters=%d gauges=%d histograms=%d events=%d>" % (
            len(self._counters),
            len(self._gauges),
            len(self._histograms),
            len(self.events),
        )


def split_label(name):
    """Split ``"base{k=v,...}"`` into ``(base, labels_dict)``.

    Names without a label suffix return ``(name, {})``.  The inverse of
    the naming scheme :meth:`MetricsRegistry.labeled` applies.
    """
    if name.endswith("}"):
        base, brace, rest = name.partition("{")
        if brace:
            labels = {}
            for pair in rest[:-1].split(","):
                key, _, value = pair.partition("=")
                labels[key] = value
            return base, labels
    return name, {}


class LabeledRegistry:
    """A label-scoped view of a :class:`MetricsRegistry` (see ``labeled``).

    Instruments live in the base registry under ``name{k=v}`` keys;
    events gain the labels as extra fields.  The view is cheap enough to
    mint per node at cluster construction and is itself further
    labelable.
    """

    __slots__ = ("_base", "labels", "_suffix", "enabled")

    def __init__(self, base, labels):
        if not labels:
            raise ValueError("labeled() needs at least one label")
        self._base = base
        self.labels = dict(labels)
        self._suffix = "{%s}" % ",".join(
            "%s=%s" % (key, value) for key, value in sorted(self.labels.items())
        )
        self.enabled = base.enabled

    @property
    def events(self):
        return self._base.events

    def bind_clock(self, clock):
        self._base.bind_clock(clock)

    def now(self):
        return self._base.now()

    def counter(self, name):
        return self._base.counter(name + self._suffix)

    def gauge(self, name):
        return self._base.gauge(name + self._suffix)

    def histogram(self, name, epsilon=None):
        return self._base.histogram(name + self._suffix, epsilon)

    def add_flush_hook(self, hook):
        self._base.add_flush_hook(hook)

    def flush(self):
        self._base.flush()

    def event(self, kind, **fields):
        merged = dict(self.labels)
        merged.update(fields)
        self._base.event(kind, **merged)

    def labeled(self, **labels):
        merged = dict(self.labels)
        merged.update(labels)
        return LabeledRegistry(self._base, merged)

    def snapshot(self):
        """The *base* registry's snapshot (labels are just key suffixes)."""
        return self._base.snapshot()

    def __repr__(self):
        return "<LabeledRegistry %s of %r>" % (self._suffix, self._base)


class NullRegistry:
    """The disabled registry: every instrument is a shared no-op.

    Subsystems cache instruments at construction, so with this registry
    in place the per-emit cost is one empty method call — and the kernel
    skips even that by checking ``enabled`` once.
    """

    enabled = False

    def __init__(self):
        self.events = EventLog(capacity=1)

    def bind_clock(self, clock):
        pass

    def now(self):
        return 0.0

    def counter(self, name):
        return _NULL_COUNTER

    def gauge(self, name):
        return _NULL_GAUGE

    def histogram(self, name, epsilon=None):
        return _NULL_HISTOGRAM

    def add_flush_hook(self, hook):
        pass

    def flush(self):
        pass

    def event(self, kind, **fields):
        pass

    def labeled(self, **labels):
        return self

    def snapshot(self):
        return {}

    def __repr__(self):
        return "<NullRegistry>"


#: Shared disabled registry; components default to this when the
#: simulator carries no telemetry.
NULL_REGISTRY = NullRegistry()


def snapshot_node_slice(snapshot, node_id):
    """One node's slice of a metrics snapshot, labels stripped.

    Clustered runs label every node-side instrument ``{node=<id>}``;
    this filters a full ``MetricsRegistry.snapshot()`` down to one node
    and returns it keyed by the bare instrument name, so per-node
    reports read exactly like a single-node snapshot.  Pure dict
    transformation — usable on a snapshot long after the run (e.g. from
    a pickled :class:`~repro.exec.RunArtifact`).
    """
    want = {"node": str(node_id)}
    out = {}
    for section in ("counters", "gauges", "histograms"):
        picked = {}
        for name, value in snapshot.get(section, {}).items():
            base, labels = split_label(name)
            if labels == want:
                picked[base] = value
        out[section] = picked
    return out


def snapshot_rollup(snapshot):
    """Cluster-wide totals: labeled instruments merged by base name.

    Counters and gauge values/maxima sum across nodes; histograms merge
    exactly for ``count``/``sum``/``mean``/``min``/``max`` (quantiles do
    not compose across sketches, so merged histograms omit them).
    Unlabeled instruments pass through untouched.
    """
    counters = {}
    for name, value in snapshot.get("counters", {}).items():
        base, _labels = split_label(name)
        counters[base] = counters.get(base, 0) + value
    gauges = {}
    for name, value in snapshot.get("gauges", {}).items():
        base, _labels = split_label(name)
        merged = gauges.setdefault(base, {"value": 0, "max": 0})
        merged["value"] += value["value"]
        merged["max"] += value["max"]
    histograms = {}
    for name, value in snapshot.get("histograms", {}).items():
        base, _labels = split_label(name)
        merged = histograms.get(base)
        if merged is None:
            histograms[base] = dict(value)
            continue
        count = merged.get("count", 0) + value.get("count", 0)
        if not count:
            continue
        total = merged.get("sum", 0.0) + value.get("sum", 0.0)
        mins = [v for v in (merged.get("min"), value.get("min")) if v is not None]
        maxs = [v for v in (merged.get("max"), value.get("max")) if v is not None]
        histograms[base] = {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": min(mins) if mins else None,
            "max": max(maxs) if maxs else None,
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
