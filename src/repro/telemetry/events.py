"""Structured event log with bounded ring-buffer retention.

Rare-but-diagnostic occurrences (deadlock aborts, lock-wait timeouts,
failed transactions) are recorded as structured events stamped with the
virtual clock.  Retention is a ring buffer: once ``capacity`` events are
held the oldest are dropped (and counted), so a pathological run cannot
exhaust memory.  Export is JSON lines with sorted keys, which makes the
log byte-comparable across same-seed runs — the determinism tests rely
on this.
"""

import json
from collections import deque


class TelemetryEvent:
    """One structured occurrence at a virtual-clock instant."""

    __slots__ = ("t", "kind", "fields")

    def __init__(self, t, kind, fields):
        self.t = t
        self.kind = kind
        self.fields = fields

    def to_dict(self):
        record = {"t": self.t, "kind": self.kind}
        record.update(self.fields)
        return record

    def __repr__(self):
        return "TelemetryEvent(t=%r, kind=%r, %r)" % (self.t, self.kind, self.fields)


class EventLog:
    """Bounded FIFO of :class:`TelemetryEvent` with JSONL export."""

    def __init__(self, capacity=65536):
        if capacity < 1:
            raise ValueError("event log capacity must be >= 1")
        self.capacity = capacity
        self._events = deque(maxlen=capacity)
        self.emitted = 0

    def __len__(self):
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @property
    def dropped(self):
        """Events lost to ring-buffer eviction."""
        return self.emitted - len(self._events)

    def emit(self, t, kind, fields):
        self.emitted += 1
        self._events.append(TelemetryEvent(t, kind, fields))

    def to_jsonl(self):
        """The retained events as JSON lines (sorted keys, stable floats)."""
        return "\n".join(
            json.dumps(event.to_dict(), sort_keys=True) for event in self._events
        )

    def dump(self, path):
        """Write the JSONL export to ``path`` (trailing newline included)."""
        text = self.to_jsonl()
        with open(path, "w") as handle:
            handle.write(text)
            if text:
                handle.write("\n")

    def __repr__(self):
        return "<EventLog %d/%d dropped=%d>" % (
            len(self._events),
            self.capacity,
            self.dropped,
        )
