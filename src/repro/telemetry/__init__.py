"""Simulated-time telemetry: metrics registry, quantile sketches, events.

The observability layer the paper's method presumes: every substrate
(kernel, lock manager, buffer pool, WAL, disk, engines) publishes
counters, gauges and streaming histograms into a per-run
:class:`MetricsRegistry`, stamped with the virtual clock, plus a bounded
structured event log.  ``registry.snapshot()`` is the metrics report the
benchmark runner attaches to every run.

Emitters consume zero virtual time, so telemetry never perturbs results;
the :data:`NULL_REGISTRY` disabled mode reduces the wall-time cost to a
cached no-op call (skipped entirely in the kernel dispatch loop).
"""

from repro.telemetry.events import EventLog, TelemetryEvent
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    LabeledRegistry,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    snapshot_node_slice,
    snapshot_rollup,
    split_label,
)
from repro.telemetry.sketch import GKSketch

__all__ = [
    "Counter",
    "EventLog",
    "GKSketch",
    "Gauge",
    "Histogram",
    "LabeledRegistry",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "TelemetryEvent",
    "snapshot_node_slice",
    "snapshot_rollup",
    "split_label",
]
