"""Streaming quantile estimation without sample retention.

The telemetry registry records latency distributions for every hot path
(lock waits, mutex hold times, disk service) over runs of millions of
observations; keeping the samples would dwarf the simulation state.
:class:`GKSketch` implements the Greenwald-Khanna summary: it stores a
bounded set of ``(value, g, delta)`` tuples and answers any quantile
query with *rank* error at most ``epsilon * n`` — the guarantee the
property tests in ``tests/test_telemetry_sketch.py`` check against
``numpy.percentile`` on retained samples.

All state updates are pure functions of the observation sequence, so a
sketch fed by a deterministic simulation is itself deterministic and can
be compared byte-for-byte across same-seed runs.
"""

import math
from bisect import bisect_right


class GKSketch:
    """Greenwald-Khanna epsilon-approximate quantile summary.

    ``observe`` is amortised O(log s) for a summary of s tuples;
    ``quantile(q)`` returns a stored value whose rank in the observed
    stream is within ``epsilon * n`` of ``ceil(q * n)``.
    """

    __slots__ = ("epsilon", "n", "_entries", "_keys", "_compress_interval")

    def __init__(self, epsilon=0.01):
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1), got %r" % (epsilon,))
        self.epsilon = epsilon
        self.n = 0
        # Sorted list of [value, g, delta]: g is the gap in minimum rank
        # to the previous tuple, delta the uncertainty span.  ``_keys``
        # mirrors the values so inserts can use the C ``bisect`` instead
        # of a Python-level binary search over the entry lists.
        self._entries = []
        self._keys = []
        self._compress_interval = max(1, int(1.0 / (2.0 * epsilon)))

    def observe(self, value):
        """Fold one observation into the summary."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        keys = self._keys
        lo = bisect_right(keys, value)
        if lo == 0 or lo == len(keys):
            # New minimum or maximum: must be exact (delta = 0).
            delta = 0
        else:
            delta = int(math.floor(2.0 * self.epsilon * self.n))
        self._entries.insert(lo, [value, 1, delta])
        keys.insert(lo, value)
        self.n += 1
        if self.n % self._compress_interval == 0:
            self._compress()

    def observe_many(self, values):
        """Fold a batch of observations, amortising the per-item overhead.

        State evolution (including the every-``1/2eps``-items compress
        cadence) is identical to calling :meth:`observe` per item.
        """
        entries = self._entries
        keys = self._keys
        epsilon2 = 2.0 * self.epsilon
        interval = self._compress_interval
        n = self.n
        floor = math.floor
        for value in values:
            value = float(value)
            if math.isnan(value):
                raise ValueError("cannot observe NaN")
            lo = bisect_right(keys, value)
            if lo == 0 or lo == len(keys):
                delta = 0
            else:
                delta = int(floor(epsilon2 * n))
            entries.insert(lo, [value, 1, delta])
            keys.insert(lo, value)
            n += 1
            if n % interval == 0:
                self.n = n
                self._compress()
                entries = self._entries
                keys = self._keys
        self.n = n

    def _compress(self):
        """Merge adjacent tuples whose combined band fits the invariant."""
        entries = self._entries
        if len(entries) < 3:
            return
        threshold = 2.0 * self.epsilon * self.n
        # Never merge away the first or last tuple: they pin min and max.
        i = len(entries) - 3
        while i >= 1:
            cur = entries[i]
            nxt = entries[i + 1]
            if cur[1] + nxt[1] + nxt[2] < threshold:
                nxt[1] += cur[1]
                del entries[i]
            i -= 1
        self._keys = [e[0] for e in entries]

    def quantile(self, q):
        """A value whose rank is within ``epsilon * n`` of ``ceil(q * n)``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile q must be in [0, 1], got %r" % (q,))
        if self.n == 0:
            raise ValueError("quantile of empty sketch")
        entries = self._entries
        target = math.ceil(q * self.n)
        margin = self.epsilon * self.n
        rmin = 0
        prev_value = entries[0][0]
        for value, g, delta in entries:
            rmin += g
            if rmin + delta > target + margin:
                return prev_value
            prev_value = value
        return entries[-1][0]

    @property
    def size(self):
        """Number of tuples retained (bounded ~O(log(eps*n)/eps))."""
        return len(self._entries)

    def __repr__(self):
        return "GKSketch(epsilon=%r, n=%d, size=%d)" % (
            self.epsilon,
            self.n,
            self.size,
        )
